package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"subtraj/internal/core"
	"subtraj/internal/experiments"
	"subtraj/internal/workload"
)

// Perf snapshot mode (-json): instead of the paper-table suite, run the
// parallel-search sweep (the BenchmarkParallelSearch shape from
// bench_test.go) and write a machine-readable BENCH_<rev>.json, so the
// repository accumulates a perf trajectory commit over commit. Snapshots
// record the hardware (NumCPU/GOMAXPROCS) because shard speedups are
// hardware-bound: on a single-CPU machine every shard count collapses to
// ~1× by construction.

type perfSnapshot struct {
	Rev        string      `json:"rev"`
	Generated  string      `json:"generated"`
	GoVersion  string      `json:"go"`
	NumCPU     int         `json:"num_cpu"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Workload   perfWork    `json:"workload"`
	Benchmarks []perfBench `json:"benchmarks"`
}

type perfWork struct {
	Name         string  `json:"name"`
	Trajectories int     `json:"trajectories"`
	Model        string  `json:"model"`
	QueryLen     int     `json:"query_len"`
	TauRatio     float64 `json:"tau_ratio"`
}

type perfBench struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SpeedupVsSequential is ns/op(shards=1) ÷ ns/op(this run).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
}

// perfShardCounts is the sweep of BenchmarkParallelSearch.
var perfShardCounts = []int{1, 2, 4, 8}

// writePerfSnapshot runs the sweep on the largest synthetic workload and
// writes BENCH_<rev>.json in the current directory.
func writePerfSnapshot(scale float64, qlen int, tauRatio float64) error {
	const model = "EDR"
	c := experiments.GetCtx(workload.SanFranLike(), scale)
	costs := c.Model(model)
	queries := c.Queries(model, qlen, 8, 5)

	snap := perfSnapshot{
		Rev:        gitRev(),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload: perfWork{
			Name:         c.Cfg.Name,
			Trajectories: c.W.Data.Len(),
			Model:        model,
			QueryLen:     qlen,
			TauRatio:     tauRatio,
		},
	}

	var seqNs int64
	for _, shards := range perfShardCounts {
		fmt.Fprintf(os.Stderr, "[benchall] ParallelSearch/shards=%d...\n", shards)
		eng := core.NewEngineShards(c.Data(model), costs, shards)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				tau := c.Tau(model, q, tauRatio)
				if _, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau, Parallelism: shards}); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := r.NsPerOp()
		if shards == 1 {
			seqNs = ns
		}
		speedup := 0.0
		if ns > 0 && seqNs > 0 {
			speedup = float64(seqNs) / float64(ns)
		}
		snap.Benchmarks = append(snap.Benchmarks, perfBench{
			Name:                fmt.Sprintf("ParallelSearch/shards=%d", shards),
			NsPerOp:             ns,
			AllocsPerOp:         r.AllocsPerOp(),
			BytesPerOp:          r.AllocedBytesPerOp(),
			SpeedupVsSequential: speedup,
		})
	}

	path := "BENCH_" + snap.Rev + ".json"
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// gitRev returns the short HEAD revision, or "dev" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	rev := strings.TrimSpace(string(out))
	if rev == "" {
		return "dev"
	}
	return rev
}

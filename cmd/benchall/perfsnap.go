package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"subtraj/internal/core"
	"subtraj/internal/experiments"
	"subtraj/internal/geo"
	"subtraj/internal/index"
	"subtraj/internal/mapmatch"
	"subtraj/internal/server"
	"subtraj/internal/traj"
	"subtraj/internal/wal"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

// workloadGPSConfig is the snapshot's trace-synthesis setting: σ=10 m
// samples every 50 m, no dropouts — the acceptance configuration under
// which matched queries recover their ground truth.
func workloadGPSConfig() workload.GPSConfig {
	return workload.GPSConfig{NoiseSigma: 10, SampleSpacing: 50}
}

// Perf snapshot mode (-json): instead of the paper-table suite, run the
// parallel-search sweep (the BenchmarkParallelSearch shape from
// bench_test.go) and write a machine-readable BENCH_<rev>.json, so the
// repository accumulates a perf trajectory commit over commit. Snapshots
// record the hardware (NumCPU/GOMAXPROCS) because shard speedups are
// hardware-bound: on a single-CPU machine every shard count collapses to
// ~1× by construction.
//
// With -quick the sweep degrades to a one-iteration smoke run (each
// configuration executes a single query, timed once): no stable numbers,
// but CI proves the snapshot pipeline itself — workload build, query
// sampling, stats collection, JSON schema — cannot silently rot.

type perfSnapshot struct {
	Rev        string      `json:"rev"`
	Generated  string      `json:"generated"`
	GoVersion  string      `json:"go"`
	NumCPU     int         `json:"num_cpu"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Quick      bool        `json:"quick,omitempty"`
	Workload   perfWork    `json:"workload"`
	// Index records the footprint of each index backend over the
	// snapshot's workload — the memory axis next to the latency axis.
	Index      []perfIndex `json:"index"`
	Benchmarks []perfBench `json:"benchmarks"`
}

// perfIndex is one backend's memory row: the exact arena size for the
// compact backend, a heap estimate for the pointer backend.
type perfIndex struct {
	Backend            string  `json:"backend"`
	IndexBytes         int64   `json:"index_bytes"`
	BytesPerTrajectory float64 `json:"bytes_per_trajectory"`
	// ReductionVsPointer is pointer bytes ÷ this backend's bytes (compact
	// rows only) — the headline memory ratio.
	ReductionVsPointer float64 `json:"reduction_vs_pointer,omitempty"`
}

// indexRows measures the two engines' footprints against the dataset
// size. Both backends are forced to full temporal capability first: the
// pointer index builds its departure-sorted orders lazily, and comparing
// it pre-build against the compact arena (which always carries the
// frozen temporal lists) would flatter the pointer side.
func indexRows(ptr, cmp *core.Engine) []perfIndex {
	ptr.Backend().BuildTemporal()
	cmp.Backend().BuildTemporal()
	n := float64(ptr.Dataset().Len())
	pb, cb := ptr.IndexBytes(), cmp.IndexBytes()
	rows := []perfIndex{
		{Backend: "pointer", IndexBytes: pb, BytesPerTrajectory: float64(pb) / n},
		{Backend: "compact", IndexBytes: cb, BytesPerTrajectory: float64(cb) / n},
	}
	if cb > 0 {
		rows[1].ReductionVsPointer = float64(pb) / float64(cb)
	}
	return rows
}

type perfWork struct {
	Name         string  `json:"name"`
	Trajectories int     `json:"trajectories"`
	Model        string  `json:"model"`
	QueryLen     int     `json:"query_len"`
	TauRatio     float64 `json:"tau_ratio"`
}

type perfBench struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	// P50/P95/P99NsPerOp are exact percentiles over the timed iterations'
	// individual durations (testing.Benchmark only reports the mean, which
	// a single slow outlier can dominate). Omitted in -quick snapshots —
	// one iteration has no distribution.
	P50NsPerOp int64 `json:"p50_ns_per_op,omitempty"`
	P95NsPerOp int64 `json:"p95_ns_per_op,omitempty"`
	P99NsPerOp int64 `json:"p99_ns_per_op,omitempty"`
	// AllocsPerOp/BytesPerOp are omitted in -quick snapshots (a single
	// timed iteration measures no allocation statistics).
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
	// SpeedupVsSequential is ns/op(shards=1) ÷ ns/op(this run); omitted
	// for the top-k configurations, which are all sequential.
	SpeedupVsSequential float64 `json:"speedup_vs_sequential,omitempty"`
	// SpeedupVsLegacy, on the TopK/.../incremental entry, is
	// ns/op(legacy restart driver) ÷ ns/op(incremental driver) — the
	// headline ratio of the cross-round top-k driver.
	SpeedupVsLegacy float64 `json:"speedup_vs_legacy,omitempty"`
	// CellsComputed/CellsAvailable are the per-op cell counters of the
	// τ-banded verification (averaged over the benchmark's iterations);
	// BandRatio is their quotient — the fraction of DP-cell work the
	// band retains versus full-width columns.
	CellsComputed  int64   `json:"cells_computed"`
	CellsAvailable int64   `json:"cells_available"`
	BandRatio      float64 `json:"band_ratio"`
	// Rounds/ReusedCandidates (top-k configurations only) average the
	// driver's round count and cross-round candidate reuse per query.
	Rounds           float64 `json:"rounds,omitempty"`
	ReusedCandidates int64   `json:"reused_candidates,omitempty"`
	// Accuracy (GPS configurations only) is the mean LCS accuracy of the
	// map-matched paths against their ground-truth query symbols.
	Accuracy float64 `json:"accuracy,omitempty"`
	// OverheadVsSymbols, on the GPS/match+search entry, is
	// ns/op(match+search) ÷ ns/op(symbols-only) — the end-to-end cost of
	// accepting raw GPS instead of symbols.
	OverheadVsSymbols float64 `json:"overhead_vs_symbols,omitempty"`
	// AppendsPerSec (DurableAppend configurations) is the headline ingest
	// throughput: 1e9 / ns_per_op.
	AppendsPerSec float64 `json:"appends_per_sec,omitempty"`
	// P99ImprovementVsLocked, on the IngestLoad/epoch entry, is
	// p99(locked baseline) ÷ p99(epoch) for searches under the same
	// sustained append stream — the headline tail-latency win of the
	// snapshot read path over the RWMutex design it replaced.
	P99ImprovementVsLocked float64 `json:"p99_improvement_vs_locked,omitempty"`
	// OverheadVsVolatile, on the durable DurableAppend entries, is
	// ns/op(this sync policy) ÷ ns/op(volatile) — the price of the WAL.
	OverheadVsVolatile float64 `json:"overhead_vs_volatile,omitempty"`
	// DeadlineNs/DeadlineExceeded (the TopK cancellation entry) record the
	// context deadline and whether the query was actually cut short by it
	// (false means the query finished inside the deadline). NsPerOp on
	// that entry is the observed return latency, asserted ≤ 2× deadline
	// before the snapshot is written.
	DeadlineNs       int64 `json:"deadline_ns,omitempty"`
	DeadlineExceeded bool  `json:"deadline_exceeded,omitempty"`
}

// perfShardCounts is the sweep of BenchmarkParallelSearch.
var perfShardCounts = []int{1, 2, 4, 8}

// writePerfSnapshot runs the sweep on the largest synthetic workload and
// writes BENCH_<rev>.json in the current directory.
func writePerfSnapshot(scale float64, qlen int, tauRatio float64, quick bool) error {
	const model = "EDR"
	if quick {
		scale = min(scale, 0.05)
	}
	c := experiments.GetCtx(workload.SanFranLike(), scale)
	costs := c.Model(model)
	queries := c.Queries(model, qlen, 8, 5)

	snap := perfSnapshot{
		Rev:        gitRev(),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Workload: perfWork{
			Name:         c.Cfg.Name,
			Trajectories: c.W.Data.Len(),
			Model:        model,
			QueryLen:     qlen,
			TauRatio:     tauRatio,
		},
	}

	var seqNs int64
	for _, shards := range perfShardCounts {
		fmt.Fprintf(os.Stderr, "[benchall] ParallelSearch/shards=%d...\n", shards)
		eng := core.NewEngineShards(c.Data(model), costs, shards)
		runOne := func(i int) (*core.QueryStats, error) {
			q := queries[i%len(queries)]
			tau := c.Tau(model, q, tauRatio)
			_, st, err := eng.SearchQuery(core.Query{Q: q, Tau: tau, Parallelism: shards})
			return st, err
		}
		bench, err := measureBench(fmt.Sprintf("ParallelSearch/shards=%d", shards), quick, len(queries), runOne)
		if err != nil {
			return err
		}
		if shards == 1 {
			seqNs = bench.NsPerOp
		}
		if bench.NsPerOp > 0 && seqNs > 0 {
			bench.SpeedupVsSequential = float64(seqNs) / float64(bench.NsPerOp)
		}
		snap.Benchmarks = append(snap.Benchmarks, bench)
	}

	// Backend pair: the identical queries on the single-shard pointer
	// index versus the compact arena — served through a full persistence
	// loop (freeze → save → OpenMapped), so the measured latency is the
	// real mmap-backed decode cost and the loop itself is smoke-tested on
	// every -quick CI run. Results are asserted bit-equal before timing;
	// the Index section records the memory side of the trade.
	engTopK := core.NewEngineShards(c.Data(model), costs, 1)
	engCmp, closeCmp, err := mappedCompactEngine(c.Data(model), costs)
	if err != nil {
		return err
	}
	defer closeCmp()
	for i, q := range queries {
		qr := core.Query{Q: q, Tau: c.Tau(model, q, tauRatio), Parallelism: 1}
		a, _, err := engTopK.SearchQuery(qr)
		if err != nil {
			return err
		}
		b, _, err := engCmp.SearchQuery(qr)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(a, b) {
			return fmt.Errorf("pointer and compact backends disagree on query %d", i)
		}
	}
	snap.Index = indexRows(engTopK, engCmp)
	for _, d := range []struct {
		name string
		eng  *core.Engine
	}{{"Search/backend=pointer", engTopK}, {"Search/backend=compact", engCmp}} {
		fmt.Fprintf(os.Stderr, "[benchall] %s...\n", d.name)
		runOne := func(i int) (*core.QueryStats, error) {
			q := queries[i%len(queries)]
			_, st, err := d.eng.SearchQuery(core.Query{Q: q, Tau: c.Tau(model, q, tauRatio), Parallelism: 1})
			return st, err
		}
		bench, err := measureBench(d.name, quick, len(queries), runOne)
		if err != nil {
			return err
		}
		snap.Benchmarks = append(snap.Benchmarks, bench)
	}

	// Top-k configuration (k = 10): the legacy restart driver vs the
	// incremental cross-round driver on the same workload, sequential
	// (single shard, Parallelism 1) so the ratio is pure algorithmic
	// saving — carried best table, candidate reuse, dynamic tightening —
	// with no hardware parallelism mixed in.
	const topkK = 10
	var legacyNs int64
	for _, d := range []struct {
		name   string
		legacy bool
	}{{"legacy", true}, {"incremental", false}} {
		fmt.Fprintf(os.Stderr, "[benchall] TopK/k=%d/%s...\n", topkK, d.name)
		runOne := func(i int) (*core.QueryStats, error) {
			q := queries[i%len(queries)]
			_, st, err := engTopK.SearchTopKStats(q, topkK, core.TopKOptions{Parallelism: 1, Legacy: d.legacy})
			return st, err
		}
		// Fixed op count (one full query rotation): a top-k op costs
		// seconds, so testing.Benchmark's 1 s target would time a single
		// query; the mean must cover the whole query set.
		bench, err := measureFixed(fmt.Sprintf("TopK/k=%d/%s", topkK, d.name), quick, len(queries), runOne)
		if err != nil {
			return err
		}
		if d.legacy {
			legacyNs = bench.NsPerOp
		} else if bench.NsPerOp > 0 && legacyNs > 0 {
			bench.SpeedupVsLegacy = float64(legacyNs) / float64(bench.NsPerOp)
		}
		snap.Benchmarks = append(snap.Benchmarks, bench)
	}

	// GPS pipeline configuration: the same queries served from raw GPS
	// traces (σ=10 m samples of each query's path, matched back onto the
	// network, then searched) versus symbols-only, plus match-only to
	// isolate the HMM cost. Sequential single-shard engine so the
	// overhead ratio is pure pipeline cost.
	matcher := mapmatch.New(c.W.Graph, mapmatch.Config{})
	gpsCfg := workloadGPSConfig()
	rng := rand.New(rand.NewSource(7))
	traces := make([][]geo.Point, len(queries))
	var accSum float64
	for i, q := range queries {
		traces[i] = workload.GenerateTrace(c.W.Graph, q, gpsCfg, rng).Points
		res, err := matcher.MatchTrace(traces[i])
		if err != nil {
			return fmt.Errorf("GPS trace %d unmatched: %w", i, err)
		}
		p, _ := res.Path()
		accSum += workload.LCSAccuracy(p, q)
	}
	accuracy := accSum / float64(len(queries))
	emptyStats := &core.QueryStats{}
	var symbolsNs int64
	for _, d := range []struct {
		name   string
		runOne func(i int) (*core.QueryStats, error)
	}{
		{"GPS/symbols-only", func(i int) (*core.QueryStats, error) {
			q := queries[i%len(queries)]
			_, st, err := engTopK.SearchQuery(core.Query{Q: q, Tau: c.Tau(model, q, tauRatio), Parallelism: 1})
			return st, err
		}},
		{"GPS/match-only", func(i int) (*core.QueryStats, error) {
			if _, err := matcher.MatchTrace(traces[i%len(traces)]); err != nil {
				return nil, err
			}
			return emptyStats, nil
		}},
		{"GPS/match+search", func(i int) (*core.QueryStats, error) {
			res, err := matcher.MatchTrace(traces[i%len(traces)])
			if err != nil {
				return nil, err
			}
			q, _ := res.Path()
			_, st, err := engTopK.SearchQuery(core.Query{Q: q, Tau: c.Tau(model, q, tauRatio), Parallelism: 1})
			return st, err
		}},
	} {
		fmt.Fprintf(os.Stderr, "[benchall] %s...\n", d.name)
		bench, err := measureBench(d.name, quick, len(queries), d.runOne)
		if err != nil {
			return err
		}
		bench.Accuracy = accuracy
		switch d.name {
		case "GPS/symbols-only":
			symbolsNs = bench.NsPerOp
			bench.Accuracy = 0 // no matching involved
		case "GPS/match+search":
			if symbolsNs > 0 && bench.NsPerOp > 0 {
				bench.OverheadVsSymbols = float64(bench.NsPerOp) / float64(symbolsNs)
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, bench)
	}

	// Durable-append configurations: the same ingest stream through the
	// volatile SafeEngine and through the WAL under each sync policy, on
	// private dataset clones so the shared snapshot workload stays
	// pristine. ns/op is dominated by the fsync policy — always pays one
	// fsync per append, interval amortizes it, never measures pure
	// framing cost.
	durBenches, err := durableAppendBenches(c.Data(model), costs, quick)
	if err != nil {
		return err
	}
	snap.Benchmarks = append(snap.Benchmarks, durBenches...)

	// Ingest-load configurations: the same searches while a background
	// writer appends at a fixed rate — the contention axis the epoch
	// snapshot design exists for. "locked" reconstructs the pre-epoch
	// RWMutex wrapper; "epoch" is the production SafeEngine.
	loadBenches, err := ingestLoadBenches(c, model, queries, tauRatio, quick)
	if err != nil {
		return err
	}
	snap.Benchmarks = append(snap.Benchmarks, loadBenches...)

	// Cancellation latency check: a top-k query under a 50 ms context
	// deadline must hand control back promptly — the engine checks the
	// context between candidate groups and τ-growth rounds, so the return
	// latency is bounded by one group's verification, asserted here at
	// ≤ 2× the deadline. A violation fails the whole snapshot.
	cancelBench, err := cancelledTopKBench(engTopK, queries, topkK, quick)
	if err != nil {
		return err
	}
	snap.Benchmarks = append(snap.Benchmarks, cancelBench)

	path := "BENCH_" + snap.Rev + ".json"
	if quick {
		path = "BENCH_quick.json"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// opCounters accumulates the per-op QueryStats counters of one timed
// configuration — the cell-level band counters and the top-k
// round/reuse counters — and writes their per-op averages into a
// perfBench. One accumulation/finalization path serves both measurement
// strategies, so a new snapshot counter is added in exactly one place.
type opCounters struct {
	cellsC, cellsA, reused, rounds int64
	durs                           []time.Duration
}

func (c *opCounters) record(st *core.QueryStats, dur time.Duration) {
	c.cellsC += st.Verify.CellsComputed
	c.cellsA += st.Verify.CellsAvailable
	c.reused += int64(st.CandidatesReused)
	c.rounds += int64(st.Rounds)
	c.durs = append(c.durs, dur)
}

func (c *opCounters) finalize(bench *perfBench, ops int64) {
	if ops > 0 {
		bench.CellsComputed = c.cellsC / ops
		bench.CellsAvailable = c.cellsA / ops
		bench.Rounds = float64(c.rounds) / float64(ops)
		bench.ReusedCandidates = c.reused / ops
	}
	if c.cellsA > 0 {
		bench.BandRatio = float64(c.cellsC) / float64(c.cellsA)
	}
	// Exact percentiles (nearest rank) over the individual op durations;
	// a single sample has no distribution to report.
	if len(c.durs) > 1 {
		sorted := append([]time.Duration(nil), c.durs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		pct := func(q float64) int64 {
			idx := int(math.Ceil(q*float64(len(sorted)))) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sorted) {
				idx = len(sorted) - 1
			}
			return sorted[idx].Nanoseconds()
		}
		bench.P50NsPerOp = pct(0.50)
		bench.P95NsPerOp = pct(0.95)
		bench.P99NsPerOp = pct(0.99)
	}
}

// measureBench times one configuration: a single timed query under
// -quick (no stable statistics — CI proves the pipeline runs), otherwise
// pool-warming passes followed by testing.Benchmark over the query set.
// Cell counters and top-k round/reuse counters are averaged per op.
func measureBench(name string, quick bool, warmups int, runOne func(int) (*core.QueryStats, error)) (perfBench, error) {
	bench := perfBench{Name: name}
	var counters opCounters
	var ops int64
	if quick {
		start := time.Now()
		st, err := runOne(0)
		if err != nil {
			return bench, err
		}
		bench.NsPerOp = time.Since(start).Nanoseconds()
		counters.record(st, time.Duration(bench.NsPerOp))
		ops = 1
	} else {
		// Warm the pools (verifier, trie arenas, candidate buffers)
		// before measuring, like TestPooledSearchAllocs: the snapshot
		// tracks steady-state per-op cost, not one-time pool growth.
		for i := 0; i < 2*warmups; i++ {
			if _, err := runOne(i); err != nil {
				return bench, err
			}
		}
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			counters = opCounters{}
			ops = int64(b.N)
			for i := 0; i < b.N; i++ {
				opStart := time.Now()
				st, err := runOne(i)
				if err != nil {
					benchErr = err
					b.Fatal(err)
				}
				counters.record(st, time.Since(opStart))
			}
		})
		if benchErr != nil {
			return bench, benchErr
		}
		bench.NsPerOp = r.NsPerOp()
		bench.AllocsPerOp = r.AllocsPerOp()
		bench.BytesPerOp = r.AllocedBytesPerOp()
	}
	counters.finalize(&bench, ops)
	return bench, nil
}

// measureFixed times one configuration over exactly `ops` iterations
// (after one warm rotation), with allocation statistics read from
// runtime.MemStats — for configurations whose per-op cost is too large
// for testing.Benchmark's time-targeted iteration count to cover the
// query set. Under -quick it degrades to the same single-op smoke as
// measureBench.
func measureFixed(name string, quick bool, ops int, runOne func(int) (*core.QueryStats, error)) (perfBench, error) {
	if quick {
		return measureBench(name, true, 0, runOne)
	}
	bench := perfBench{Name: name}
	for i := 0; i < ops; i++ { // warm pools, one full query rotation
		if _, err := runOne(i); err != nil {
			return bench, err
		}
	}
	var counters opCounters
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < ops; i++ {
		opStart := time.Now()
		st, err := runOne(i)
		if err != nil {
			return bench, err
		}
		counters.record(st, time.Since(opStart))
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := int64(ops)
	bench.NsPerOp = elapsed.Nanoseconds() / n
	bench.AllocsPerOp = int64(m1.Mallocs-m0.Mallocs) / n
	bench.BytesPerOp = int64(m1.TotalAlloc-m0.TotalAlloc) / n
	counters.finalize(&bench, n)
	return bench, nil
}

// durableAppendBenches measures the same ingest stream through the
// volatile SafeEngine and through the WAL under each sync policy. Each
// configuration appends to a private clone of the snapshot dataset and a
// throwaway durable directory, so nothing leaks into later sections.
func durableAppendBenches(src *traj.Dataset, costs wed.FilterCosts, quick bool) ([]perfBench, error) {
	ops := 400
	if quick {
		ops = 3
	}
	payloads := make([]traj.Trajectory, min(ops, len(src.Trajs)))
	for i := range payloads {
		payloads[i] = src.Trajs[i]
	}
	emptyStats := &core.QueryStats{}
	var volatileNs int64
	var out []perfBench
	for _, d := range []struct {
		name string
		sync string // "" = no WAL
	}{
		{"DurableAppend/volatile", ""},
		{"DurableAppend/sync=always", "always"},
		{"DurableAppend/sync=interval", "interval"},
		{"DurableAppend/sync=never", "never"},
	} {
		fmt.Fprintf(os.Stderr, "[benchall] %s...\n", d.name)
		clone := traj.NewDataset(src.Rep)
		for _, t := range src.Trajs {
			clone.Add(t)
		}
		var safe *server.SafeEngine
		cleanup := func() error { return nil }
		if d.sync == "" {
			safe = server.NewSafeEngine(core.NewEngineShards(clone, costs, 1))
		} else {
			pol, err := wal.ParseSyncPolicy(d.sync)
			if err != nil {
				return nil, err
			}
			dir, err := os.MkdirTemp("", "subtraj-walbench-")
			if err != nil {
				return nil, err
			}
			s, _, err := server.OpenDurable(dir, clone, costs, server.DurableOptions{
				Sync:         pol,
				SyncInterval: 10 * time.Millisecond,
			})
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			safe = s
			cleanup = func() error {
				err := safe.Durable().Close()
				os.RemoveAll(dir)
				return err
			}
		}
		runOne := func(i int) (*core.QueryStats, error) {
			if _, err := safe.Append(payloads[i%len(payloads)]); err != nil {
				return nil, err
			}
			return emptyStats, nil
		}
		bench, err := measureFixed(d.name, quick, ops, runOne)
		if cerr := cleanup(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		if bench.NsPerOp > 0 {
			bench.AppendsPerSec = 1e9 / float64(bench.NsPerOp)
		}
		if d.sync == "" {
			volatileNs = bench.NsPerOp
		} else if volatileNs > 0 && bench.NsPerOp > 0 {
			bench.OverheadVsVolatile = float64(bench.NsPerOp) / float64(volatileNs)
		}
		out = append(out, bench)
	}
	return out, nil
}

// lockedEngine reconstructs the pre-epoch SafeEngine for the IngestLoad
// baseline: one RWMutex serializing every search (read lock) against
// every append (write lock), with the old design's temporal discipline —
// every append invalidates the departure-sorted postings, and a
// temporal query that finds them stale rebuilds them under the WRITE
// lock before searching. It exists only so the snapshot can keep
// measuring what the epoch design replaced.
type lockedEngine struct {
	mu  sync.RWMutex
	eng *core.Engine // guarded by mu
}

func (l *lockedEngine) SearchQuery(qr core.Query) ([]traj.Match, *core.QueryStats, error) {
	if qr.Temporal.Mode == core.TemporalDeparture && !qr.Temporal.DisablePrefilter {
		// Under a sustained append stream the order is stale for
		// effectively every temporal query, so each one pays an
		// O(N log N) rebuild with all other traffic excluded — the
		// pathology ROADMAP item 2 recorded.
		l.mu.Lock()
		l.eng.PrepareTemporal()
		l.mu.Unlock()
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.SearchQuery(qr)
}

func (l *lockedEngine) Append(t traj.Trajectory) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.eng.Append(t)
	return nil
}

// ingestLoadBenches measures search latency under a sustained append
// stream. Both configurations serve the identical query mix — three
// plain searches then one departure-window search, the serving mix the
// temporal API produces — while one background writer appends rotated
// copies of existing trajectories at a fixed ~2000 appends/s: "locked"
// is the RWMutex wrapper above, where every append stalls every queued
// search and invalidates the temporal order that the next windowed
// query rebuilds under the write lock; "epoch" is the production
// SafeEngine — lock-free snapshot reads, O(1) publishes, the base's
// temporal order built once per fold. The headline is the p99 ratio:
// rebuild and write-lock stalls surface in the tail, not the median.
func ingestLoadBenches(c *experiments.Ctx, model string, queries [][]traj.Symbol, tauRatio float64, quick bool) ([]perfBench, error) {
	const appendEvery = 500 * time.Microsecond
	ops := 300
	if quick {
		ops = 3
	}
	src := c.Data(model)
	costs := c.Model(model)
	payloads := make([]traj.Trajectory, 256)
	for i := range payloads {
		payloads[i] = src.Trajs[i%len(src.Trajs)]
	}

	var lockedP99 int64
	var out []perfBench
	for _, d := range []struct {
		name  string
		epoch bool
	}{{"IngestLoad/locked", false}, {"IngestLoad/epoch", true}} {
		fmt.Fprintf(os.Stderr, "[benchall] %s...\n", d.name)
		clone := traj.NewDataset(src.Rep)
		for _, t := range src.Trajs {
			clone.Add(t)
		}
		var (
			search   func(core.Query) ([]traj.Match, *core.QueryStats, error)
			appendFn func(traj.Trajectory) error
		)
		if d.epoch {
			safe := server.NewSafeEngine(core.NewEngineShards(clone, costs, 1))
			safe.SetCompactAppends(2048)
			search = safe.SearchQuery
			appendFn = func(t traj.Trajectory) error { _, err := safe.Append(t); return err }
		} else {
			l := &lockedEngine{eng: core.NewEngineShards(clone, costs, 1)}
			search = l.SearchQuery
			appendFn = l.Append
		}

		// The fixed-rate writer runs across the warm-up AND the timed
		// span, so measured searches always contend with live appends.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var appendErr atomic.Value
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(appendEvery)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
					if err := appendFn(payloads[i%len(payloads)]); err != nil {
						appendErr.Store(err)
						return
					}
				}
			}
		}()
		runOne := func(i int) (*core.QueryStats, error) {
			q := queries[i%len(queries)]
			qr := core.Query{Q: q, Tau: c.Tau(model, q, tauRatio), Parallelism: 1}
			if i%4 == 3 {
				qr.Temporal.Mode = core.TemporalDeparture
				qr.Temporal.Lo, qr.Temporal.Hi = 0, 1e12
			}
			_, st, err := search(qr)
			return st, err
		}
		bench, err := measureFixed(d.name, quick, ops, runOne)
		close(stop)
		wg.Wait()
		if err != nil {
			return nil, err
		}
		if aerr, ok := appendErr.Load().(error); ok {
			return nil, fmt.Errorf("%s background writer: %w", d.name, aerr)
		}
		if d.epoch {
			if lockedP99 > 0 && bench.P99NsPerOp > 0 {
				bench.P99ImprovementVsLocked = float64(lockedP99) / float64(bench.P99NsPerOp)
			}
		} else {
			lockedP99 = bench.P99NsPerOp
		}
		out = append(out, bench)
	}
	return out, nil
}

// cancelledTopKBench runs top-k queries under a 50 ms context deadline
// and records the worst observed return latency. The engine's
// cancellation points (between candidate groups, between τ-growth
// rounds) bound that latency; exceeding twice the deadline fails the
// snapshot — a regression in cancellation responsiveness, not a perf
// number to track quietly.
func cancelledTopKBench(eng *core.Engine, queries [][]traj.Symbol, k int, quick bool) (perfBench, error) {
	const deadline = 50 * time.Millisecond
	const maxReturn = 2 * deadline
	iters := 5
	if quick {
		iters = 1
	}
	fmt.Fprintf(os.Stderr, "[benchall] TopK/k=%d/deadline=%s...\n", k, deadline)
	bench := perfBench{
		Name:       fmt.Sprintf("TopK/k=%d/deadline=%s", k, deadline),
		DeadlineNs: deadline.Nanoseconds(),
	}
	var worst time.Duration
	for i := 0; i < iters; i++ {
		q := queries[i%len(queries)]
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		start := time.Now()
		_, _, err := eng.SearchTopKStats(q, k, core.TopKOptions{Parallelism: 1, Ctx: ctx})
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				return bench, fmt.Errorf("cancelled top-k: unexpected error: %w", err)
			}
			bench.DeadlineExceeded = true
		}
		if elapsed > worst {
			worst = elapsed
		}
	}
	bench.NsPerOp = worst.Nanoseconds()
	if worst > maxReturn {
		return bench, fmt.Errorf("cancelled top-k returned in %s; budget is %s for a %s deadline", worst, maxReturn, deadline)
	}
	return bench, nil
}

// mappedCompactEngine freezes ds into a compact arena, saves it to a
// temporary file, and re-opens the file zero-copy: the returned engine
// serves postings from the mmap, not from the freshly built heap arena,
// so benching it proves the whole persistence loop. The saved bytes are
// checked byte-identical to the in-heap arena before the build is
// discarded. The close function unmaps and removes the file.
func mappedCompactEngine(ds *traj.Dataset, costs wed.FilterCosts) (*core.Engine, func() error, error) {
	built := index.FreezeDataset(ds)
	dir, err := os.MkdirTemp("", "subtraj-bench-")
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*core.Engine, func() error, error) {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	path := filepath.Join(dir, "index.sbtj")
	f, err := os.Create(path)
	if err != nil {
		return fail(err)
	}
	if err := built.Save(f); err != nil {
		f.Close()
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	mapped, err := index.OpenMapped(path)
	if err != nil {
		return fail(err)
	}
	if !bytes.Equal(mapped.Bytes(), built.Bytes()) {
		mapped.Close()
		return fail(fmt.Errorf("mapped arena differs from the built arena"))
	}
	eng := core.NewEngineWithBackend(ds, index.NewOverlay(mapped), costs)
	closer := func() error {
		err := mapped.Close()
		os.RemoveAll(dir)
		return err
	}
	return eng, closer, nil
}

// gitRev returns the short HEAD revision, or "dev" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	rev := strings.TrimSpace(string(out))
	if rev == "" {
		return "dev"
	}
	return rev
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"subtraj/internal/core"
	"subtraj/internal/experiments"
	"subtraj/internal/workload"
)

// Perf snapshot mode (-json): instead of the paper-table suite, run the
// parallel-search sweep (the BenchmarkParallelSearch shape from
// bench_test.go) and write a machine-readable BENCH_<rev>.json, so the
// repository accumulates a perf trajectory commit over commit. Snapshots
// record the hardware (NumCPU/GOMAXPROCS) because shard speedups are
// hardware-bound: on a single-CPU machine every shard count collapses to
// ~1× by construction.
//
// With -quick the sweep degrades to a one-iteration smoke run (each
// configuration executes a single query, timed once): no stable numbers,
// but CI proves the snapshot pipeline itself — workload build, query
// sampling, stats collection, JSON schema — cannot silently rot.

type perfSnapshot struct {
	Rev        string      `json:"rev"`
	Generated  string      `json:"generated"`
	GoVersion  string      `json:"go"`
	NumCPU     int         `json:"num_cpu"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Quick      bool        `json:"quick,omitempty"`
	Workload   perfWork    `json:"workload"`
	Benchmarks []perfBench `json:"benchmarks"`
}

type perfWork struct {
	Name         string  `json:"name"`
	Trajectories int     `json:"trajectories"`
	Model        string  `json:"model"`
	QueryLen     int     `json:"query_len"`
	TauRatio     float64 `json:"tau_ratio"`
}

type perfBench struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	// AllocsPerOp/BytesPerOp are omitted in -quick snapshots (a single
	// timed iteration measures no allocation statistics).
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
	// SpeedupVsSequential is ns/op(shards=1) ÷ ns/op(this run).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
	// CellsComputed/CellsAvailable are the per-op cell counters of the
	// τ-banded verification (averaged over the benchmark's iterations);
	// BandRatio is their quotient — the fraction of DP-cell work the
	// band retains versus full-width columns.
	CellsComputed  int64   `json:"cells_computed"`
	CellsAvailable int64   `json:"cells_available"`
	BandRatio      float64 `json:"band_ratio"`
}

// perfShardCounts is the sweep of BenchmarkParallelSearch.
var perfShardCounts = []int{1, 2, 4, 8}

// writePerfSnapshot runs the sweep on the largest synthetic workload and
// writes BENCH_<rev>.json in the current directory.
func writePerfSnapshot(scale float64, qlen int, tauRatio float64, quick bool) error {
	const model = "EDR"
	if quick {
		scale = min(scale, 0.05)
	}
	c := experiments.GetCtx(workload.SanFranLike(), scale)
	costs := c.Model(model)
	queries := c.Queries(model, qlen, 8, 5)

	snap := perfSnapshot{
		Rev:        gitRev(),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Workload: perfWork{
			Name:         c.Cfg.Name,
			Trajectories: c.W.Data.Len(),
			Model:        model,
			QueryLen:     qlen,
			TauRatio:     tauRatio,
		},
	}

	var seqNs int64
	for _, shards := range perfShardCounts {
		fmt.Fprintf(os.Stderr, "[benchall] ParallelSearch/shards=%d...\n", shards)
		eng := core.NewEngineShards(c.Data(model), costs, shards)
		runOne := func(i int) (*core.QueryStats, error) {
			q := queries[i%len(queries)]
			tau := c.Tau(model, q, tauRatio)
			_, st, err := eng.SearchQuery(core.Query{Q: q, Tau: tau, Parallelism: shards})
			return st, err
		}
		var bench perfBench
		bench.Name = fmt.Sprintf("ParallelSearch/shards=%d", shards)
		var cellsC, cellsA int64
		var ops int64
		if quick {
			// One-iteration sanity: a single timed query, no stable
			// statistics — exists so CI exercises this exact code path.
			start := time.Now()
			st, err := runOne(0)
			if err != nil {
				return err
			}
			bench.NsPerOp = time.Since(start).Nanoseconds()
			cellsC, cellsA, ops = st.Verify.CellsComputed, st.Verify.CellsAvailable, 1
		} else {
			// Warm the pools (verifier, trie arenas, candidate buffers)
			// before measuring, like TestPooledSearchAllocs: the snapshot
			// tracks steady-state per-op cost, not one-time pool growth.
			for i := 0; i < 2*len(queries); i++ {
				if _, err := runOne(i); err != nil {
					return err
				}
			}
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				cellsC, cellsA, ops = 0, 0, int64(b.N)
				for i := 0; i < b.N; i++ {
					st, err := runOne(i)
					if err != nil {
						b.Fatal(err)
					}
					cellsC += st.Verify.CellsComputed
					cellsA += st.Verify.CellsAvailable
				}
			})
			bench.NsPerOp = r.NsPerOp()
			bench.AllocsPerOp = r.AllocsPerOp()
			bench.BytesPerOp = r.AllocedBytesPerOp()
		}
		if shards == 1 {
			seqNs = bench.NsPerOp
		}
		if bench.NsPerOp > 0 && seqNs > 0 {
			bench.SpeedupVsSequential = float64(seqNs) / float64(bench.NsPerOp)
		}
		if ops > 0 {
			bench.CellsComputed = cellsC / ops
			bench.CellsAvailable = cellsA / ops
		}
		if cellsA > 0 {
			bench.BandRatio = float64(cellsC) / float64(cellsA)
		}
		snap.Benchmarks = append(snap.Benchmarks, bench)
	}

	path := "BENCH_" + snap.Rev + ".json"
	if quick {
		path = "BENCH_quick.json"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// gitRev returns the short HEAD revision, or "dev" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	rev := strings.TrimSpace(string(out))
	if rev == "" {
		return "dev"
	}
	return rev
}

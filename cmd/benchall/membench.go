package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"time"

	"subtraj/internal/core"
	"subtraj/internal/experiments"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

// Memory snapshot mode (-membench N): instead of the table suite, measure
// the index-memory axis on two workloads — the SanFran-like road-network
// workload at -scale, and a synthetic N-trajectory stream of short paths
// (the "many small trajectories" regime where pointer-and-map overhead
// dominates postings). For each workload both backends are built, their
// footprints and bytes/trajectory recorded, the compact engine's results
// asserted bit-equal to the pointer engine's, and a pointer/compact
// latency pair timed. Written to BENCH_mem_<rev>.json.

type memSnapshot struct {
	Rev       string    `json:"rev"`
	Generated string    `json:"generated"`
	GoVersion string    `json:"go"`
	NumCPU    int       `json:"num_cpu"`
	Quick     bool      `json:"quick,omitempty"`
	Workloads []memWork `json:"workloads"`
}

type memWork struct {
	Name         string      `json:"name"`
	Trajectories int         `json:"trajectories"`
	Postings     int         `json:"postings"`
	Index        []perfIndex `json:"index"`
	Benchmarks   []perfBench `json:"benchmarks"`
}

// syntheticShort builds n short trajectories (24–56 symbols) over a
// 1000-symbol uniform alphabet with coarse timestamps — a city-core
// road network reused by a deep trip archive, the regime where posting
// lists are dense and the pointer index's 16 B/posting (main + temporal
// copies) is pure overhead.
func syntheticShort(n int, rng *rand.Rand) *traj.Dataset {
	const alpha = 1000
	ds := traj.NewDataset(traj.VertexRep)
	for i := 0; i < n; i++ {
		l := 24 + rng.Intn(33)
		p := make([]traj.Symbol, l)
		for j := range p {
			p[j] = traj.Symbol(rng.Intn(alpha))
		}
		start := float64(rng.Intn(86400))
		ts := make([]float64, l)
		for j := range ts {
			ts[j] = start + float64(j)*15
		}
		ds.Add(traj.Trajectory{Path: p, Times: ts})
	}
	return ds
}

// sampleSubpaths draws m query strings as random subpaths of the dataset.
func sampleSubpaths(ds *traj.Dataset, m, qlen int, rng *rand.Rand) [][]traj.Symbol {
	qs := make([][]traj.Symbol, 0, m)
	for len(qs) < m {
		p := ds.Path(int32(rng.Intn(ds.Len())))
		if len(p) < qlen {
			continue
		}
		s := rng.Intn(len(p) - qlen + 1)
		qs = append(qs, append([]traj.Symbol(nil), p[s:s+qlen]...))
	}
	return qs
}

// memMeasure builds both backends over ds (the compact one through the
// save→mmap loop), checks equivalence on the queries, and returns the
// filled memWork row.
func memMeasure(name string, ds *traj.Dataset, costs wed.FilterCosts, queries [][]traj.Symbol, tau func(q []traj.Symbol) float64, quick bool) (memWork, error) {
	w := memWork{Name: name, Trajectories: ds.Len()}
	fmt.Fprintf(os.Stderr, "[benchall] %s: building pointer index over %d trajectories...\n", name, ds.Len())
	engPtr := core.NewEngineShards(ds, costs, 1)
	fmt.Fprintf(os.Stderr, "[benchall] %s: freezing compact arena...\n", name)
	engCmp, closeCmp, err := mappedCompactEngine(ds, costs)
	if err != nil {
		return w, err
	}
	defer closeCmp()
	w.Postings = engPtr.Backend().NumPostings()
	w.Index = indexRows(engPtr, engCmp)
	for i, q := range queries {
		qr := core.Query{Q: q, Tau: tau(q), Parallelism: 1}
		qt := qr
		qt.Temporal.Mode = core.TemporalDeparture
		qt.Temporal.Lo, qt.Temporal.Hi = 0, 1e12
		for _, query := range []core.Query{qr, qt} {
			a, _, err := engPtr.SearchQuery(query)
			if err != nil {
				return w, err
			}
			b, _, err := engCmp.SearchQuery(query)
			if err != nil {
				return w, err
			}
			if !reflect.DeepEqual(a, b) {
				return w, fmt.Errorf("%s: pointer and compact backends disagree on query %d", name, i)
			}
		}
	}
	for _, d := range []struct {
		bname string
		eng   *core.Engine
	}{{"Search/backend=pointer", engPtr}, {"Search/backend=compact", engCmp}} {
		fmt.Fprintf(os.Stderr, "[benchall] %s: %s...\n", name, d.bname)
		runOne := func(i int) (*core.QueryStats, error) {
			q := queries[i%len(queries)]
			_, st, err := d.eng.SearchQuery(core.Query{Q: q, Tau: tau(q), Parallelism: 1})
			return st, err
		}
		bench, err := measureBench(d.bname, quick, len(queries), runOne)
		if err != nil {
			return w, err
		}
		w.Benchmarks = append(w.Benchmarks, bench)
	}
	return w, nil
}

// writeMemBench runs the memory snapshot and writes BENCH_mem_<rev>.json.
func writeMemBench(n int, scale float64, qlen int, quick bool) error {
	const model = "EDR"
	const tauRatio = 0.1
	if quick {
		scale = min(scale, 0.05)
		n = min(n, 20000)
	}
	snap := memSnapshot{
		Rev:       gitRev(),
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Quick:     quick,
	}

	// Road-network workload: long trajectories, small alphabet reuse —
	// the regime the paper's experiments run in.
	c := experiments.GetCtx(workload.SanFranLike(), scale)
	costs := c.Model(model)
	queries := c.Queries(model, qlen, 8, 5)
	row, err := memMeasure(c.Cfg.Name, c.Data(model), costs, queries,
		func(q []traj.Symbol) float64 { return c.Tau(model, q, tauRatio) }, quick)
	if err != nil {
		return err
	}
	snap.Workloads = append(snap.Workloads, row)

	// Synthetic stream: n short trajectories. Lev costs (alphabet-
	// agnostic); τ scaled to the query's own length.
	rng := rand.New(rand.NewSource(42))
	fmt.Fprintf(os.Stderr, "[benchall] generating %d synthetic trajectories...\n", n)
	sds := syntheticShort(n, rng)
	lev := wed.NewLev()
	sq := sampleSubpaths(sds, 8, 8, rng)
	row, err = memMeasure(fmt.Sprintf("synthetic-%d", n), sds, lev, sq,
		func(q []traj.Symbol) float64 { return tauRatio * core.SumFilterCost(lev, q) }, quick)
	if err != nil {
		return err
	}
	snap.Workloads = append(snap.Workloads, row)

	path := "BENCH_mem_" + snap.Rev + ".json"
	if quick {
		path = "BENCH_mem_quick.json"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, w := range snap.Workloads {
		for _, r := range w.Index {
			fmt.Printf("%-18s %-8s %12d bytes  %8.1f bytes/traj", w.Name, r.Backend, r.IndexBytes, r.BytesPerTrajectory)
			if r.ReductionVsPointer > 0 {
				fmt.Printf("  %.2fx smaller", r.ReductionVsPointer)
			}
			fmt.Println()
		}
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// Command benchall runs the full experiment suite — every table and
// figure of the paper's §6 — and prints paper-style tables. Results go to
// stdout; progress to stderr.
//
// Usage:
//
//	benchall [-scale 0.3] [-queries 5] [-qlen 60] [-only fig6,tab4] [-quick]
//	benchall -json [-scale 0.3] [-qlen 60] [-quick]
//	benchall -membench 1000000 [-scale 1.0] [-quick]
//
// -scale multiplies every dataset's trajectory count (1.0 ≈ tens of
// thousands of trajectories; the default keeps a full run in minutes).
// -json skips the table suite and instead snapshots the sharded
// parallel-search sweep into BENCH_<rev>.json (see perfsnap.go), the
// machine-readable perf trajectory of the query engine; -json -quick is
// the CI smoke variant (one iteration per configuration, written to
// BENCH_quick.json, no stable timings). -membench N measures the
// index-memory axis (see membench.go): pointer vs compact footprint and
// latency on the SanFran-like workload at -scale plus a synthetic
// N-trajectory stream, written to BENCH_mem_<rev>.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"subtraj/internal/experiments"
	"subtraj/internal/workload"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.3, "dataset scale factor")
		queries = flag.Int("queries", 5, "queries per data point")
		qlen    = flag.Int("qlen", 60, "default query length |Q|")
		only    = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		quick   = flag.Bool("quick", false, "tiny quick run (overrides scale/queries/qlen)")
		seed    = flag.Int64("seed", 1, "query sampling seed")
		jsonOut = flag.Bool("json", false, "run the parallel-search sweep and write a BENCH_<rev>.json perf snapshot instead of the table suite")
		membench = flag.Int("membench", 0, "run the index-memory snapshot (SanFran at -scale plus a synthetic N-trajectory stream) and write BENCH_mem_<rev>.json")
	)
	flag.Parse()

	if *membench > 0 {
		if err := writeMemBench(*membench, *scale, *qlen, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		if err := writePerfSnapshot(*scale, *qlen, 0.1, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := experiments.Options{Scale: *scale, Queries: *queries, QueryLen: *qlen, Seed: *seed}
	if *quick {
		opts = experiments.Quick()
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }

	datasets := experiments.DefaultDatasets()
	small := []experiments.Ctx2{datasets[0]} // Beijing-like, for single-dataset tables
	enumTraj := int(200 * opts.Scale * 10)   // the "5,000 trajectory" fraction, scaled

	type job struct {
		id string
		fn func() *experiments.Table
	}
	jobs := []job{
		{"fig4", func() *experiments.Table {
			return experiments.Fig4TravelTime(workload.BeijingLike(),
				[]float64{0, 0.05, 0.1, 0.15, 0.2}, 8*opts.Queries, opts)
		}},
		{"tab3", func() *experiments.Table {
			return experiments.Tab3SubVsWhole(workload.BeijingLike(),
				[]int{5, 10, 15, 20, 25}, 8*opts.Queries, opts)
		}},
		{"fig5", func() *experiments.Table {
			return experiments.Fig5Naturalness(workload.BeijingLike(),
				[]int{40, 50, 60}, []float64{0.05, 0.15, 0.3}, opts.Queries, opts)
		}},
		{"fig6", func() *experiments.Table {
			return experiments.Fig6VaryTau(datasets, experiments.ModelNames,
				[]float64{0.1, 0.2, 0.3}, opts)
		}},
		{"fig7", func() *experiments.Table {
			return experiments.Fig7VaryQueryLen(datasets, []string{"EDR", "ERP", "SURS"},
				[]int{20, 40, 60, 80}, opts)
		}},
		{"fig8", func() *experiments.Table {
			return experiments.Fig8VaryDatasetSize(datasets, []string{"EDR", "ERP", "SURS"},
				[]float64{0.25, 0.5, 0.75, 1}, opts)
		}},
		{"fig9", func() *experiments.Table {
			return experiments.Fig9EnumBaselinesTau(workload.BeijingLike(), enumTraj,
				[]float64{0.05, 0.1, 0.15, 0.2}, opts)
		}},
		{"fig10", func() *experiments.Table {
			return experiments.Fig10EnumBaselinesSize(workload.BeijingLike(),
				[]int{enumTraj / 2, enumTraj, enumTraj * 3 / 2}, opts)
		}},
		{"fig11", func() *experiments.Table {
			return experiments.Fig11CandidateCounts(workload.BeijingLike(), experiments.ModelNames,
				[]float64{0.1, 0.2, 0.3}, []int{20, 40, 60}, opts)
		}},
		{"fig12", func() *experiments.Table {
			return experiments.Fig12Temporal(small, []float64{0.01, 0.02, 0.05, 0.1}, opts)
		}},
		{"fig13", func() *experiments.Table {
			// The paper sweeps η up to 100×; beyond ~10× the candidate
			// explosion already dominates (the figure's message) and
			// runtime becomes impractical, so the sweep stops there.
			fig13 := opts
			fig13.Queries = min(2, opts.Queries)
			return experiments.Fig13VaryEta(small,
				[]float64{1e-4, 1e-2, 1, 10},
				[][2]interface{}{{0.1, opts.QueryLen}, {0.3, opts.QueryLen}, {0.1, 40}}, fig13)
		}},
		{"tab4", func() *experiments.Table {
			return experiments.Tab4Breakdown(workload.BeijingLike(), opts)
		}},
		{"tab5", func() *experiments.Table {
			return experiments.Tab5VerifyRates(workload.BeijingLike(), opts)
		}},
		{"tab6", func() *experiments.Table {
			return experiments.Tab6IndexBuild(datasets, enumTraj, opts)
		}},
	}

	fmt.Printf("subtraj experiment suite — scale=%.2f queries=%d |Q|=%d seed=%d\n\n",
		opts.Scale, opts.Queries, opts.QueryLen, opts.Seed)
	for _, j := range jobs {
		if !run(j.id) {
			continue
		}
		fmt.Fprintf(os.Stderr, "[benchall] running %s...\n", j.id)
		start := time.Now()
		tb := j.fn()
		fmt.Fprintf(os.Stderr, "[benchall] %s done in %s\n", j.id, time.Since(start).Round(time.Millisecond))
		tb.Format(os.Stdout)
	}
}

package subtraj

import (
	"subtraj/internal/mapmatch"
)

// MapMatcher converts raw GPS traces into network-constrained vertex paths
// via HMM map matching (Newson–Krumm style, the paper's preprocessing step
// [34]). Build once per road network; Match per trace.
type MapMatcher struct {
	inner *mapmatch.Matcher
}

// MapMatchConfig tunes the HMM. Zero values select defaults suited to
// ~20 m GPS noise on ~100 m road segments.
type MapMatchConfig struct {
	// Sigma is the GPS noise standard deviation (metres).
	Sigma float64
	// Beta is the transition model's tolerance (metres) for the gap
	// between straight-line displacement and route distance.
	Beta float64
	// MaxCandidates bounds candidate vertices per GPS sample.
	MaxCandidates int
}

// NewMapMatcher builds a matcher over the road network.
func NewMapMatcher(g *Graph, cfg MapMatchConfig) *MapMatcher {
	return &MapMatcher{inner: mapmatch.New(g, mapmatch.Config{
		Sigma:         cfg.Sigma,
		Beta:          cfg.Beta,
		MaxCandidates: cfg.MaxCandidates,
	})}
}

// Match maps a GPS trace (ordered coordinates) onto the network, returning
// a connected vertex path ready to insert into a Dataset or use as a
// query. It fails when no connected candidate path explains the trace.
func (m *MapMatcher) Match(trace []Point) ([]Symbol, error) {
	return m.inner.Match(trace)
}

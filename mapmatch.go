package subtraj

import (
	"subtraj/internal/mapmatch"
)

// MapMatcher converts raw GPS traces into network-constrained vertex paths
// via HMM map matching (Newson–Krumm style, the paper's preprocessing step
// [34]). Build once per road network; it is safe for concurrent use —
// per-call scratch is pooled internally, so one matcher serves any number
// of goroutines.
type MapMatcher struct {
	inner *mapmatch.Matcher
}

// MapMatchConfig tunes the HMM. Zero values select defaults suited to
// ~20 m GPS noise on ~100 m road segments.
type MapMatchConfig struct {
	// Sigma is the GPS noise standard deviation (metres).
	Sigma float64
	// Beta is the transition model's tolerance (metres) for the gap
	// between straight-line displacement and route distance.
	Beta float64
	// MaxCandidates bounds candidate vertices per GPS sample.
	MaxCandidates int
	// MaxGap, when positive, splits a trace at any jump between
	// consecutive samples longer than this (metres) instead of stitching
	// an unobserved route across the dropout.
	MaxGap float64
}

// MatchResult is a matched trace: one MatchSegment per connected stretch,
// an overall confidence, and the number of HMM-break splits.
type MatchResult = mapmatch.Result

// MatchSegment is one connected sub-path of a matched trace, with the
// sample range it explains and its match confidence.
type MatchSegment = mapmatch.Segment

// MatchBatchItem is one trace's outcome inside MatchBatch.
type MatchBatchItem = mapmatch.BatchItem

// NewMapMatcher builds a matcher over the road network.
func NewMapMatcher(g *Graph, cfg MapMatchConfig) *MapMatcher {
	return &MapMatcher{inner: mapmatch.New(g, mapmatch.Config{
		Sigma:         cfg.Sigma,
		Beta:          cfg.Beta,
		MaxCandidates: cfg.MaxCandidates,
		MaxGap:        cfg.MaxGap,
	})}
}

// Match maps a GPS trace (ordered coordinates) onto the network, returning
// a connected vertex path ready to insert into a Dataset or use as a
// query. It fails when no single connected candidate path explains the
// trace; use MatchTrace to recover the connected pieces instead.
func (m *MapMatcher) Match(trace []Point) ([]Symbol, error) {
	return m.inner.Match(trace)
}

// MatchTrace maps a GPS trace onto the network, splitting at GPS dropouts
// (HMM breaks): every sample is explained by exactly one connected
// segment, each scored with a match confidence in (0, 1].
func (m *MapMatcher) MatchTrace(trace []Point) (MatchResult, error) {
	return m.inner.MatchTrace(trace)
}

// MatchBatch matches several traces concurrently (parallelism <= 0 uses
// GOMAXPROCS) and returns per-trace results in input order.
func (m *MapMatcher) MatchBatch(traces [][]Point, parallelism int) []MatchBatchItem {
	return m.inner.MatchBatch(traces, parallelism)
}

// Internal exposes the internal matcher for the server package (the HTTP
// layer's GPS endpoints are configured with it).
func (m *MapMatcher) Internal() *mapmatch.Matcher { return m.inner }

package subtraj

import (
	"io"
	"math/rand"
	"sort"

	"subtraj/internal/core"
	"subtraj/internal/geo"
	"subtraj/internal/roadnet"
	"subtraj/internal/shortestpath"
	"subtraj/internal/spatial"
	"subtraj/internal/traj"
	"subtraj/internal/verify"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

// Re-exported data model types. Aliases keep the internal packages and the
// public API in lock-step without conversion shims.
type (
	// Symbol is a trajectory element: a vertex or edge ID.
	Symbol = traj.Symbol
	// Trajectory is a network-constrained trajectory (path + timestamps).
	Trajectory = traj.Trajectory
	// Dataset is an in-memory trajectory database.
	Dataset = traj.Dataset
	// Match is one query answer: trajectory ID and 0-based inclusive
	// subtrajectory bounds with the exact WED.
	Match = traj.Match
	// Graph is a directed road network with vertex coordinates and edge
	// weights.
	Graph = roadnet.Graph
	// Point is a planar coordinate.
	Point = geo.Point
	// Costs is a user-definable WED cost model (Sub/Ins/Del).
	Costs = wed.Costs
	// FilterCosts extends Costs with substitution neighbourhoods B(q)
	// and filtering costs c(q); engines require it.
	FilterCosts = wed.FilterCosts
	// QueryStats instruments one query (time breakdown, candidate count,
	// verification rates; top-k drivers add rounds, reused candidates,
	// and the final effective τ).
	QueryStats = core.QueryStats
	// TopKOptions tunes the top-k driver (parallelism; Legacy selects
	// the restart baseline).
	TopKOptions = core.TopKOptions
	// VerifyOptions selects verification mode and ablations.
	VerifyOptions = verify.Options
	// Workload is a generated synthetic city (graph + trajectories).
	Workload = workload.Workload
	// WorkloadConfig parameterises workload generation.
	WorkloadConfig = workload.Config
	// GPSConfig parameterises synthetic GPS trace generation (noise σ,
	// sample spacing, dropout rate).
	GPSConfig = workload.GPSConfig
	// GPSTrace is one synthetic GPS trace with its ground-truth path.
	GPSTrace = workload.Trace
)

// Representation constants.
const (
	// VertexRep marks vertex-ID paths.
	VertexRep = traj.VertexRep
	// EdgeRep marks edge-ID paths.
	EdgeRep = traj.EdgeRep
)

// Verification modes (see the paper's §5 and the -BT/-SW method suffixes).
const (
	// VerifyBT is local verification with bidirectional tries (default).
	VerifyBT = verify.ModeBT
	// VerifyLocal is local verification without trie caching.
	VerifyLocal = verify.ModeLocal
	// VerifySW is a full dynamic-programming scan per candidate.
	VerifySW = verify.ModeSW
)

// NewDataset creates an empty dataset in the given representation.
func NewDataset(rep traj.Representation) *Dataset { return traj.NewDataset(rep) }

// Workload configurations mirroring the paper's four datasets at reduced
// scale (see DESIGN.md §1.2).
var (
	// BeijingLike mirrors the Beijing dataset's shape.
	BeijingLike = workload.BeijingLike
	// PortoLike mirrors Porto (most trajectories, short paths).
	PortoLike = workload.PortoLike
	// SingaporeLike mirrors Singapore (small network, long paths).
	SingaporeLike = workload.SingaporeLike
	// SanFranLike mirrors the synthesised SanFran bulk dataset.
	SanFranLike = workload.SanFranLike
	// TinyWorkload is a miniature workload for tests and demos.
	TinyWorkload = workload.Tiny
)

// Generate builds a synthetic workload deterministically from its config.
func Generate(cfg WorkloadConfig) *Workload { return workload.Generate(cfg) }

// SampleQuery draws a query subtrajectory of the given length from the
// dataset (the paper's §6.3 protocol).
func SampleQuery(ds *Dataset, qlen int, rng *rand.Rand) ([]Symbol, error) {
	return workload.SampleQuery(ds, qlen, rng)
}

// LoadWorkload reads a workload previously written with Workload.Save
// (e.g. by cmd/datagen).
func LoadWorkload(r io.Reader) (*Workload, error) { return workload.Load(r) }

// GenerateGPSTrace samples a noisy GPS trace along a ground-truth vertex
// path — the raw-input side of the GPS-native pipeline, and the labelled
// data of the closed-loop accuracy harness.
func GenerateGPSTrace(g *Graph, path []Symbol, cfg GPSConfig, rng *rand.Rand) GPSTrace {
	return workload.GenerateTrace(g, path, cfg, rng)
}

// LCSAccuracy scores a matched path against its ground truth as the
// longest-common-subsequence fraction of the truth recovered in order.
func LCSAccuracy(got, want []Symbol) float64 { return workload.LCSAccuracy(got, want) }

// SpatialIndex is the black-box spatial index EDR/ERP neighbourhoods use;
// the kd-tree and the R-tree both satisfy it (§4.2, Figure 2).
type SpatialIndex = wed.SpatialIndex

// Network prepares the spatial and shortest-path substrates a road network
// needs to serve WED cost models: a spatial index over vertex coordinates
// (EDR/ERP neighbourhoods; kd-tree by default, R-tree on request), the
// symmetrised adjacency, and a hub-labelling distance index
// (NetEDR/NetERP), each built lazily on first use.
type Network struct {
	G *Graph

	// UseRTree switches the lazily-built spatial index from the default
	// kd-tree to the STR R-tree. Set it before the first cost-model
	// constructor call.
	UseRTree bool

	tree       SpatialIndex
	undirected *shortestpath.Adjacency
	hubs       *shortestpath.HubLabels
}

// NewNetwork wraps a road network.
func NewNetwork(g *Graph) *Network { return &Network{G: g} }

// Spatial returns the vertex spatial index, building it on first use.
func (n *Network) Spatial() SpatialIndex {
	if n.tree == nil {
		if n.UseRTree {
			n.tree = spatial.BuildRTree(n.G.Coords())
		} else {
			n.tree = spatial.Build(n.G.Coords())
		}
	}
	return n.tree
}

// UndirectedAdjacency returns the symmetrised adjacency (§2.2.3).
func (n *Network) UndirectedAdjacency() *shortestpath.Adjacency {
	if n.undirected == nil {
		n.undirected = shortestpath.Undirected(n.G)
	}
	return n.undirected
}

// HubLabels returns the shortest-path distance index over the symmetrised
// network, building it on first use (construction is the expensive part of
// Net* cost models; see Table 6 discussion).
func (n *Network) HubLabels() *shortestpath.HubLabels {
	if n.hubs == nil {
		n.hubs = shortestpath.BuildHubLabels(n.UndirectedAdjacency())
	}
	return n.hubs
}

// Lev returns the Levenshtein cost model (works on either representation).
func (n *Network) Lev() FilterCosts { return wed.NewLev() }

// EDR returns the EDR cost model with matching threshold eps (vertex
// representation).
func (n *Network) EDR(eps float64) FilterCosts {
	return wed.NewEDR(n.G.Coords(), n.Spatial(), eps)
}

// ERP returns the ERP cost model with the barycentre reference point and
// neighbourhood threshold eta (vertex representation). The paper's default
// eta is 1e-4 × the median nearest-neighbour distance.
func (n *Network) ERP(eta float64) FilterCosts {
	return wed.NewERP(n.G.Coords(), n.Spatial(), n.G.Barycenter(), eta)
}

// DefaultERPEta returns the paper's η for ERP: 1e-4 × median distance from
// a vertex to its nearest neighbour (Appendix D).
func (n *Network) DefaultERPEta() float64 {
	tree := n.Spatial()
	coords := n.G.Coords()
	ds := make([]float64, 0, len(coords))
	for v := range coords {
		if _, d := tree.NearestBeyond(coords[v], 0); d > 0 {
			ds = append(ds, d)
		}
	}
	return 1e-4 * medianOf(ds)
}

// NetEDR returns the NetEDR cost model with network matching threshold eps
// (the paper uses the median edge weight). Distance queries go through a
// memo in front of the hub labels.
func (n *Network) NetEDR(eps float64) FilterCosts {
	return wed.NewNetEDR(n.UndirectedAdjacency(), wed.NewMemoNetDist(n.HubLabels(), 0), eps)
}

// NetERP returns the NetERP cost model with deletion constant gdel and
// neighbourhood threshold eta (the paper uses the median edge weight).
// Distance queries go through a memo in front of the hub labels.
func (n *Network) NetERP(gdel, eta float64) FilterCosts {
	return wed.NewNetERP(n.UndirectedAdjacency(), wed.NewMemoNetDist(n.HubLabels(), 0), gdel, eta)
}

// SURS returns the SURS cost model over road lengths (edge
// representation).
func (n *Network) SURS() FilterCosts {
	ws := make([]float64, n.G.NumEdges())
	for i, e := range n.G.Edges() {
		ws[i] = e.Weight
	}
	return wed.NewSURS(ws)
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

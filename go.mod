module subtraj

go 1.24

package subtraj

import (
	"errors"
	"fmt"
	"io"

	"subtraj/internal/core"
	"subtraj/internal/index"
	"subtraj/internal/traj"
)

// Engine answers subtrajectory similarity queries over one dataset and one
// WED cost model. Build once, query many times; Append supports
// incremental updates.
type Engine struct {
	inner *core.Engine
}

// NewEngine indexes the dataset under the cost model. The dataset's
// representation must match the cost model's alphabet (vertex models: Lev,
// EDR, ERP, NetEDR, NetERP; edge models: Lev, SURS) — the engine cannot
// check this, so mixing them silently searches the wrong alphabet.
func NewEngine(ds *Dataset, costs FilterCosts) (*Engine, error) {
	return NewEngineShards(ds, costs, 0)
}

// NewEngineShards is NewEngine with an explicit trajectory-shard count
// for the inverted index (0 = one shard per CPU). The shard count is the
// ceiling on a single query's parallelism (see SearchParallel); results
// are identical at every setting.
func NewEngineShards(ds *Dataset, costs FilterCosts, shards int) (*Engine, error) {
	if ds == nil || costs == nil {
		return nil, errors.New("subtraj: nil dataset or cost model")
	}
	return &Engine{inner: core.NewEngineShards(ds, costs, shards)}, nil
}

// NewEngineCompact indexes the dataset into the memory-optimal compact
// backend: postings are frozen into one flat bit-packed arena instead
// of pointer-rich per-symbol slices. Queries return results bit-equal to
// the pointer backend at a fraction of the memory; Appends land in a
// small mutable tail merged at query time. Save the frozen snapshot with
// SaveIndex and re-open it zero-copy with OpenMappedEngine.
func NewEngineCompact(ds *Dataset, costs FilterCosts) (*Engine, error) {
	if ds == nil || costs == nil {
		return nil, errors.New("subtraj: nil dataset or cost model")
	}
	return &Engine{inner: core.NewEngineCompact(ds, costs)}, nil
}

// SaveIndex writes the engine's compact index snapshot to w (the
// versioned arena format OpenMappedEngine maps back). Errors unless the
// engine uses the compact backend with no unfrozen appends.
func (e *Engine) SaveIndex(w io.Writer) error {
	ov, ok := e.inner.Backend().(*index.Overlay)
	if !ok {
		return errors.New("subtraj: SaveIndex requires the compact backend (NewEngineCompact)")
	}
	if ov.TailLen() > 0 {
		return errors.New("subtraj: compact index has unfrozen appends; rebuild with NewEngineCompact before saving")
	}
	return ov.Base().Save(w)
}

// OpenMappedEngine builds an engine over ds from a compact index file
// written by SaveIndex, mapped zero-copy (the postings live in the page
// cache, not the Go heap). The file must describe exactly ds's
// trajectories. The mapping is released when the process exits or the
// returned close function is called (after which the engine must not be
// used).
func OpenMappedEngine(ds *Dataset, costs FilterCosts, path string) (*Engine, func() error, error) {
	if ds == nil || costs == nil {
		return nil, nil, errors.New("subtraj: nil dataset or cost model")
	}
	c, err := index.OpenMapped(path)
	if err != nil {
		return nil, nil, err
	}
	if c.NumTrajectories() != ds.Len() {
		c.Close()
		return nil, nil, fmt.Errorf("subtraj: index file describes %d trajectories, dataset has %d", c.NumTrajectories(), ds.Len())
	}
	eng := &Engine{inner: core.NewEngineWithBackend(ds, index.NewOverlay(c), costs)}
	return eng, c.Close, nil
}

// NumShards returns the index partition count.
func (e *Engine) NumShards() int { return e.inner.NumShards() }

// IndexBytes returns the index backend's memory footprint: the exact
// arena size for the compact backend, a heap estimate for the pointer
// backend.
func (e *Engine) IndexBytes() int64 { return e.inner.IndexBytes() }

// IndexKind names the index backend family ("pointer" or "compact").
func (e *Engine) IndexKind() string { return e.inner.IndexKind() }

// Inner exposes the internal engine for the experiment harness.
func (e *Engine) Inner() *core.Engine { return e.inner }

// Dataset returns the indexed dataset.
func (e *Engine) Dataset() *Dataset { return e.inner.Dataset() }

// Costs returns the engine's cost model.
func (e *Engine) Costs() FilterCosts { return e.inner.Costs() }

// Append indexes one more trajectory and returns its ID.
func (e *Engine) Append(t Trajectory) int32 { return e.inner.Append(t) }

// Search returns every match with wed(P[s..t], Q) < tau (Definition 3),
// sorted by (ID, S, T), each carrying its exact distance.
func (e *Engine) Search(q []Symbol, tau float64) ([]Match, error) {
	return e.inner.Search(q, tau)
}

// SearchRatio derives τ from the paper's threshold ratio:
// τ = ratio · Σ_{q∈Q} c(q) (§6.1).
func (e *Engine) SearchRatio(q []Symbol, ratio float64) ([]Match, error) {
	return e.inner.Search(q, e.Threshold(q, ratio))
}

// Threshold converts a τ_ratio into an absolute τ for query q.
func (e *Engine) Threshold(q []Symbol, ratio float64) float64 {
	return ratio * core.SumFilterCost(e.inner.Costs(), q)
}

// SearchStats searches with explicit verification options and returns
// instrumentation (candidate counts, time breakdown, UPR/CMR).
func (e *Engine) SearchStats(q []Symbol, tau float64, vopts VerifyOptions) ([]Match, *QueryStats, error) {
	return e.inner.SearchQuery(core.Query{Q: q, Tau: tau, Verify: vopts})
}

// SearchParallel is Search with an explicit shard-worker cap: 0 = auto
// (one worker per CPU, bounded by NumShards), 1 = sequential, N > 1 = up
// to N workers verifying index shards concurrently. Every setting
// returns the identical (ID, S, T)-sorted match set.
func (e *Engine) SearchParallel(q []Symbol, tau float64, parallelism int) ([]Match, error) {
	res, _, err := e.inner.SearchQuery(core.Query{Q: q, Tau: tau, Parallelism: parallelism})
	return res, err
}

// TemporalWindow is a query time interval I = [Lo, Hi] in dataset seconds.
type TemporalWindow struct {
	Lo, Hi float64
	// Contain requires [T_s, T_t] ⊆ I; the default requires overlap,
	// [T_s, T_t] ∩ I ≠ ∅ (§4.3).
	Contain bool
	// Departure requires the matched trajectory to depart inside I
	// (T_1 ∈ I); its pre-filter binary-searches departure-sorted
	// postings lists (§4.3). Takes precedence over Contain.
	Departure bool
	// NoPrefilter disables the candidate-level temporal prune, checking
	// the constraint only after verification (the paper's "no-TF").
	NoPrefilter bool
}

// SearchTemporal answers a temporally constrained query: matches must
// satisfy the window constraint on the timestamps at their endpoints.
func (e *Engine) SearchTemporal(q []Symbol, tau float64, w TemporalWindow) ([]Match, *QueryStats, error) {
	qr := core.Query{Q: q, Tau: tau}
	qr.Temporal.Lo, qr.Temporal.Hi = w.Lo, w.Hi
	qr.Temporal.DisablePrefilter = w.NoPrefilter
	switch {
	case w.Departure:
		qr.Temporal.Mode = core.TemporalDeparture
	case w.Contain:
		qr.Temporal.Mode = core.TemporalContain
	default:
		qr.Temporal.Mode = core.TemporalOverlap
	}
	return e.inner.SearchQuery(qr)
}

// SearchTopK returns the best-matching subtrajectory of each of the k
// most similar trajectories, ordered by ascending WED (§6.2.1's top-k
// protocol). See core.Engine.SearchTopK for the searchable-radius caveat.
func (e *Engine) SearchTopK(q []Symbol, k int) ([]Match, error) {
	return e.inner.SearchTopK(q, k)
}

// SearchTopKStats is SearchTopK with options and the incremental
// driver's merged QueryStats (rounds, reused candidates, final effective
// τ — see core.Engine.SearchTopKStats).
func (e *Engine) SearchTopKStats(q []Symbol, k int, opts TopKOptions) ([]Match, *QueryStats, error) {
	return e.inner.SearchTopKStats(q, k, opts)
}

// SearchExact answers the exact path query (the paper's §1 baseline):
// every subtrajectory equal to Q symbol for symbol, found via the rarest
// query symbol's postings with no dynamic programming.
func (e *Engine) SearchExact(q []Symbol) ([]Match, error) {
	return e.inner.SearchExact(q)
}

// CountExact returns the exact occurrence count of Q — path popularity
// estimation (§1).
func (e *Engine) CountExact(q []Symbol) (int, error) {
	return e.inner.CountExact(q)
}

// PathIndex is a suffix array over all trajectory paths, answering exact
// subtrajectory lookups in O(|Q|·log N) independent of symbol frequencies
// (the suffix-array indexing route of the paper's §7 related work). It is
// an alternative to Engine.SearchExact for exact-only workloads such as
// path popularity estimation.
type PathIndex struct {
	inner *index.PathSuffixArray
}

// NewPathIndex builds the suffix array over the dataset. Unlike Engine,
// a PathIndex is static: rebuild after appending trajectories.
func NewPathIndex(ds *Dataset) *PathIndex {
	return &PathIndex{inner: index.BuildPathSuffixArray(ds)}
}

// Lookup returns every exact occurrence of q as matches with WED 0.
func (pi *PathIndex) Lookup(q []Symbol) []Match {
	var out []Match
	for _, p := range pi.inner.Lookup(q) {
		out = append(out, Match{ID: p.ID, S: p.Pos, T: p.Pos + int32(len(q)) - 1})
	}
	return out
}

// Count returns the number of exact occurrences of q — path popularity.
func (pi *PathIndex) Count(q []Symbol) int { return pi.inner.Count(q) }

// BestPerTrajectory reduces a match set to the paper's effectiveness-
// experiment convention (§6.2.1): one match per trajectory — the smallest
// WED, ties broken by the shortest subtrajectory, then by position.
func BestPerTrajectory(ms []Match) map[int32]Match {
	best := make(map[int32]Match)
	for _, m := range ms {
		b, ok := best[m.ID]
		if !ok || better(m, b) {
			best[m.ID] = m
		}
	}
	return best
}

func better(a, b traj.Match) bool {
	if a.WED != b.WED {
		return a.WED < b.WED
	}
	la, lb := a.T-a.S, b.T-b.S
	if la != lb {
		return la < lb
	}
	if a.S != b.S {
		return a.S < b.S
	}
	return a.T < b.T
}

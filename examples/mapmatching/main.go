// Map matching end to end (the paper's §2.1 preprocessing): raw GPS traces
// are matched onto the road network with an HMM (Newson–Krumm [34]),
// inserted into the trajectory database, and then found again by a
// similarity query built from another noisy trace of the same route. The
// trace synthesis, match confidence, gap-splitting, and accuracy scoring
// shown here are exactly what the GPS-native server pipeline runs.
//
//	go run ./examples/mapmatching
package main

import (
	"fmt"
	"log"
	"math/rand"

	"subtraj"
)

func main() {
	log.SetFlags(0)
	w := subtraj.Generate(subtraj.BeijingLike().Scale(0.04))
	net := subtraj.NewNetwork(w.Graph)
	matcher := subtraj.NewMapMatcher(w.Graph, subtraj.MapMatchConfig{Sigma: 15})
	rng := rand.New(rand.NewSource(99))

	// A "vehicle" drives a route twice; we only observe noisy GPS samples
	// every ~40 m with 10 m noise.
	truth := w.Data.Get(3).Path
	gps := subtraj.GPSConfig{NoiseSigma: 10, SampleSpacing: 40}
	fmt.Printf("ground-truth route: %d vertices\n", len(truth))
	traceA := subtraj.GenerateGPSTrace(w.Graph, truth, gps, rng)
	traceB := subtraj.GenerateGPSTrace(w.Graph, truth, gps, rng)

	// Match both traces onto the network (one matcher serves any number
	// of goroutines; MatchBatch fans out internally).
	items := matcher.MatchBatch([][]subtraj.Point{traceA.Points, traceB.Points}, 0)
	for i, item := range items {
		if item.Err != nil {
			log.Fatal(item.Err)
		}
		path, _ := item.Result.Path()
		fmt.Printf("matched drive %c: %d vertices, confidence %.2f, accuracy %.0f%%\n",
			'A'+i, len(path), item.Result.Confidence, 100*subtraj.LCSAccuracy(path, truth))
	}
	pathA, _ := items[0].Result.Path()
	pathB, _ := items[1].Result.Path()

	// A trace with a GPS dropout long enough to disconnect does not fail:
	// it splits into connected sub-paths, each usable on its own.
	gapMatcher := subtraj.NewMapMatcher(w.Graph, subtraj.MapMatchConfig{Sigma: 15, MaxGap: 250})
	holey := subtraj.GenerateGPSTrace(w.Graph, truth,
		subtraj.GPSConfig{NoiseSigma: 10, SampleSpacing: 40, DropoutRate: 0.08, DropoutLen: 10}, rng)
	res, err := gapMatcher.MatchTrace(holey.Points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dropout trace (%d dropouts): %d segment(s), %d split(s)\n",
		holey.Dropouts, len(res.Segments), res.Splits)

	// Insert drive A as a new trajectory; query with drive B.
	eng, err := subtraj.NewEngine(w.Data, net.EDR(100))
	if err != nil {
		log.Fatal(err)
	}
	times := make([]float64, len(pathA))
	for i := range times {
		times[i] = float64(i) * 9 // synthetic timestamps
	}
	newID := eng.Append(subtraj.Trajectory{Path: pathA, Times: times})

	matches, err := eng.SearchRatio(pathB, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.ID == newID {
			found = true
			fmt.Printf("drive B's query found drive A: trajectory %d [%d..%d], wed=%.2f\n",
				m.ID, m.S, m.T, m.WED)
			break
		}
	}
	if !found {
		fmt.Printf("drive A not among the %d matches (GPS noise exceeded the threshold)\n", len(matches))
	}
}

// Map matching end to end (the paper's §2.1 preprocessing): raw GPS traces
// are matched onto the road network with an HMM (Newson–Krumm [34]),
// inserted into the trajectory database, and then found again by a
// similarity query built from another noisy trace of the same route.
//
//	go run ./examples/mapmatching
package main

import (
	"fmt"
	"log"
	"math/rand"

	"subtraj"
)

func main() {
	log.SetFlags(0)
	w := subtraj.Generate(subtraj.BeijingLike().Scale(0.04))
	net := subtraj.NewNetwork(w.Graph)
	matcher := subtraj.NewMapMatcher(w.Graph, subtraj.MapMatchConfig{Sigma: 15})
	rng := rand.New(rand.NewSource(99))

	// A "vehicle" drives a route twice; we only observe noisy GPS.
	truth := w.Data.Get(3).Path
	fmt.Printf("ground-truth route: %d vertices\n", len(truth))
	traceA := noisyTrace(w, truth, 10, rng)
	traceB := noisyTrace(w, truth, 10, rng)

	// Match both traces onto the network.
	pathA, err := matcher.Match(traceA)
	if err != nil {
		log.Fatal(err)
	}
	pathB, err := matcher.Match(traceB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matched drive A: %d vertices (%d%% of truth recovered)\n",
		len(pathA), overlapPct(pathA, truth))
	fmt.Printf("matched drive B: %d vertices (%d%% of truth recovered)\n",
		len(pathB), overlapPct(pathB, truth))

	// Insert drive A as a new trajectory; query with drive B.
	eng, err := subtraj.NewEngine(w.Data, net.EDR(100))
	if err != nil {
		log.Fatal(err)
	}
	times := make([]float64, len(pathA))
	for i := range times {
		times[i] = float64(i) * 9 // synthetic timestamps
	}
	newID := eng.Append(subtraj.Trajectory{Path: pathA, Times: times})

	matches, err := eng.SearchRatio(pathB, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.ID == newID {
			found = true
			fmt.Printf("drive B's query found drive A: trajectory %d [%d..%d], wed=%.2f\n",
				m.ID, m.S, m.T, m.WED)
			break
		}
	}
	if !found {
		fmt.Printf("drive A not among the %d matches (GPS noise exceeded the threshold)\n", len(matches))
	}
}

// noisyTrace emits one Gaussian-perturbed GPS sample per route vertex.
func noisyTrace(w *subtraj.Workload, path []subtraj.Symbol, noise float64, rng *rand.Rand) []subtraj.Point {
	out := make([]subtraj.Point, len(path))
	for i, v := range path {
		p := w.Graph.Coord(v)
		out[i] = subtraj.Point{X: p.X + rng.NormFloat64()*noise, Y: p.Y + rng.NormFloat64()*noise}
	}
	return out
}

func overlapPct(got, truth []subtraj.Symbol) int {
	inTruth := map[subtraj.Symbol]bool{}
	for _, v := range truth {
		inTruth[v] = true
	}
	n := 0
	for _, v := range got {
		if inTruth[v] {
			n++
		}
	}
	if len(got) == 0 {
		return 0
	}
	return 100 * n / len(got)
}

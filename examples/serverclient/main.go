// Command serverclient demonstrates the wedserve HTTP API end to end: it
// starts an in-process server over the tiny workload (so the example is
// self-contained — point base at a running wedserve to use it as a real
// client), then walks through search, top-k, batch, append, cache
// behaviour, and the stats counters.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"subtraj"
	"subtraj/internal/server"
)

func main() {
	log.SetFlags(0)

	// Stand up an in-process server (swap for your wedserve address).
	w := subtraj.Generate(subtraj.TinyWorkload(42))
	net := subtraj.NewNetwork(w.Graph)
	eng, err := subtraj.NewEngine(w.Data, net.Lev())
	if err != nil {
		log.Fatal(err)
	}
	safe := subtraj.NewSafeEngine(eng)
	matcher := subtraj.NewMapMatcher(w.Graph, subtraj.MapMatchConfig{})
	ts := httptest.NewServer(server.New(safe.Inner(), server.Config{
		MaxSymbol: int32(w.Graph.NumVertices()),
		Matcher:   matcher.Internal(),
	}))
	defer ts.Close()
	base := ts.URL

	q, err := subtraj.SampleQuery(w.Data, 8, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}

	// Similarity search with a threshold ratio.
	var res struct {
		Count  int     `json:"count"`
		Tau    float64 `json:"tau"`
		Cached bool    `json:"cached"`
	}
	post(base+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.2}, &res)
	fmt.Printf("search: %d matches under tau=%.3g (cached=%v)\n", res.Count, res.Tau, res.Cached)

	// The identical query again: served from the LRU cache.
	post(base+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.2}, &res)
	fmt.Printf("search again: %d matches (cached=%v)\n", res.Count, res.Cached)

	// Top-k and a mixed batch.
	post(base+"/v1/topk", map[string]any{"q": q, "k": 3}, &res)
	fmt.Printf("topk: %d best trajectories\n", res.Count)

	var batch struct {
		Results []struct {
			Count int    `json:"count"`
			Error string `json:"error"`
		} `json:"results"`
	}
	post(base+"/v1/batch", map[string]any{"queries": []map[string]any{
		{"kind": "count", "q": q},
		{"kind": "exact", "q": q},
	}}, &batch)
	fmt.Printf("batch: count=%d exact=%d\n", batch.Results[0].Count, batch.Results[1].Count)

	// Appending invalidates cached answers for the new generation.
	var app struct {
		ID         int32  `json:"id"`
		Generation uint64 `json:"generation"`
	}
	post(base+"/v1/append", map[string]any{"path": q}, &app)
	fmt.Printf("append: new trajectory %d (generation %d)\n", app.ID, app.Generation)
	post(base+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.2}, &res)
	fmt.Printf("search after append: %d matches (cached=%v)\n", res.Count, res.Cached)

	// GPS-native clients skip symbols entirely: synthesise a noisy trace
	// of a known route, match it, ingest it, and query by raw GPS.
	truth := w.Data.Get(0).Path
	trace := subtraj.GenerateGPSTrace(w.Graph, truth,
		subtraj.GPSConfig{NoiseSigma: 10, SampleSpacing: 50}, rand.New(rand.NewSource(2)))
	pts := make([][2]float64, len(trace.Points))
	for i, p := range trace.Points {
		pts[i] = [2]float64{p.X, p.Y}
	}

	var matched struct {
		Segments []struct {
			Symbols []subtraj.Symbol `json:"symbols"`
		} `json:"segments"`
		Confidence float64 `json:"confidence"`
		Splits     int     `json:"splits"`
	}
	post(base+"/v1/match", map[string]any{"trace": pts}, &matched)
	fmt.Printf("match: %d segments, confidence %.2f (truth %d vertices, matched %d)\n",
		len(matched.Segments), matched.Confidence, len(truth), len(matched.Segments[0].Symbols))

	var ingest struct {
		Appended   int    `json:"appended"`
		Generation uint64 `json:"generation"`
	}
	post(base+"/v1/ingest", map[string]any{"traces": []any{pts}}, &ingest)
	fmt.Printf("ingest: %d segment(s) appended (generation %d)\n", ingest.Appended, ingest.Generation)

	var traceRes struct {
		Count           int     `json:"count"`
		MatchConfidence float64 `json:"match_confidence"`
	}
	post(base+"/v1/search", map[string]any{"trace": pts, "tau_ratio": 0.2}, &traceRes)
	fmt.Printf("trace search: %d matches (match confidence %.2f)\n", traceRes.Count, traceRes.MatchConfidence)

	// Running counters.
	var stats server.StatsSnapshot
	get(base+"/v1/stats", &stats)
	fmt.Printf("stats: %d searches executed, cache %d hits / %d misses, %d invalidations\n",
		stats.Totals.Executed, stats.Cache.Hits, stats.Cache.Misses, stats.Cache.Invalidations)
	fmt.Printf("gps: %d matched, %d split, %d segments ingested, mean match %s\n",
		stats.GPS.TracesMatched, stats.GPS.TracesSplit, stats.GPS.SegmentsAppended,
		time.Duration(stats.GPS.MeanMatchNS))
}

func post(url string, body, dst any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatal(err)
	}
}

func get(url string, dst any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatal(err)
	}
}

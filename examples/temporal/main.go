// Temporal-constrained search (§4.3, §6.6): restrict matches to
// trajectories driven during a time window — e.g. "find rush-hour
// traversals of this route" for time-of-day-aware travel time estimation.
//
//	go run ./examples/temporal
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"subtraj"
)

func main() {
	log.SetFlags(0)
	w := subtraj.Generate(subtraj.BeijingLike().Scale(0.05))
	net := subtraj.NewNetwork(w.Graph)
	eng, err := subtraj.NewEngine(w.Data, net.EDR(100))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(31))
	q, err := subtraj.SampleQuery(w.Data, 40, rng)
	if err != nil {
		log.Fatal(err)
	}
	tau := eng.Threshold(q, 0.15)

	all, err := eng.Search(q, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unconstrained: %d matches\n", len(all))

	// Morning rush hour: 07:00–10:00 (dataset timestamps are seconds
	// from midnight).
	window := subtraj.TemporalWindow{Lo: 7 * 3600, Hi: 10 * 3600}
	morning, stats, err := eng.SearchTemporal(q, tau, window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("07:00-10:00 (overlap):  %3d matches, %d candidates after temporal pruning\n",
		len(morning), stats.Candidates)

	// Contained: the whole traversal inside the window.
	window.Contain = true
	contained, _, err := eng.SearchTemporal(q, tau, window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("07:00-10:00 (contained): %3d matches\n", len(contained))

	// The same query without the candidate-level pre-filter (the
	// paper's "no-TF"): identical answers, more work.
	window.Contain = false
	window.NoPrefilter = true
	start := time.Now()
	noTF, noTFStats, err := eng.SearchTemporal(q, tau, window)
	if err != nil {
		log.Fatal(err)
	}
	noTFTime := time.Since(start)

	window.NoPrefilter = false
	start = time.Now()
	tf, tfStats, err := eng.SearchTemporal(q, tau, window)
	if err != nil {
		log.Fatal(err)
	}
	tfTime := time.Since(start)
	fmt.Printf("TF vs no-TF: %d = %d matches; candidates %d vs %d; time %s vs %s\n",
		len(tf), len(noTF), tfStats.Candidates, noTFStats.Candidates,
		tfTime.Round(time.Microsecond), noTFTime.Round(time.Microsecond))

	// Per-match traversal times for the morning matches.
	for i, m := range morning {
		if i == 5 {
			fmt.Printf("  ...\n")
			break
		}
		t := w.Data.Get(m.ID)
		dep := time.Duration(t.Times[m.S]) * time.Second
		arr := time.Duration(t.Times[m.T]) * time.Second
		fmt.Printf("  trajectory %-5d driven %s -> %s (wed=%.2f)\n",
			m.ID, fmtClock(dep), fmtClock(arr), m.WED)
	}
}

func fmtClock(d time.Duration) string {
	h := int(d.Hours())
	m := int(d.Minutes()) % 60
	return fmt.Sprintf("%02d:%02d", h, m)
}

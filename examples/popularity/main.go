// Path popularity estimation (the paper's §1, third motivating
// application): count how often a given path appears in the database as a
// subtrajectory. Exact counts come from either the engine's exact path
// query (rarest-symbol postings) or a suffix array; similarity search
// adds a "fuzzy popularity" that tolerates small route variations.
//
//	go run ./examples/popularity
package main

import (
	"fmt"
	"log"
	"math/rand"

	"subtraj"
)

func main() {
	log.SetFlags(0)
	w := subtraj.Generate(subtraj.BeijingLike().Scale(0.08))
	net := subtraj.NewNetwork(w.Graph)
	eng, err := subtraj.NewEngine(w.Data, net.EDR(100))
	if err != nil {
		log.Fatal(err)
	}
	pathIdx := subtraj.NewPathIndex(w.Data)

	rng := rand.New(rand.NewSource(5))
	fmt.Println("path popularity (20-vertex route segments):")
	fmt.Println("len  exact(engine)  exact(suffix-array)  fuzzy(τ=0.1)")
	for i := 0; i < 6; i++ {
		q, err := subtraj.SampleQuery(w.Data, 20, rng)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := eng.CountExact(q)
		if err != nil {
			log.Fatal(err)
		}
		saCount := pathIdx.Count(q)
		if exact != saCount {
			log.Fatalf("exact backends disagree: %d vs %d", exact, saCount)
		}
		fuzzy, err := eng.SearchRatio(q, 0.1)
		if err != nil {
			log.Fatal(err)
		}
		// Fuzzy popularity: distinct trajectories with a similar span.
		trajs := map[int32]bool{}
		for _, m := range fuzzy {
			trajs[m.ID] = true
		}
		fmt.Printf("%3d  %13d  %19d  %12d\n", len(q), exact, saCount, len(trajs))
	}
}

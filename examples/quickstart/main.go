// Quickstart: generate a small city, index it under EDR, and answer one
// subtrajectory similarity query end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"subtraj"
)

func main() {
	log.SetFlags(0)

	// 1. A workload: road network + network-constrained trajectories.
	//    (Bring your own data by filling a subtraj.Dataset and Graph.)
	w := subtraj.Generate(subtraj.BeijingLike().Scale(0.05))
	fmt.Printf("city: %d vertices, %d road segments; %d trajectories (avg %.0f vertices)\n",
		w.Graph.NumVertices(), w.Graph.NumEdges(), w.Data.Len(), w.Data.AvgLen())

	// 2. A cost model. EDR treats two vertices within ε as matching.
	net := subtraj.NewNetwork(w.Graph)
	costs := net.EDR(100) // ε = 100 m

	// 3. The engine: inverted index + subsequence filtering +
	//    bidirectional-trie verification.
	eng, err := subtraj.NewEngine(w.Data, costs)
	if err != nil {
		log.Fatal(err)
	}

	// 4. A query: any path on the network. Here, a 40-vertex stretch of
	//    a real trajectory.
	rng := rand.New(rand.NewSource(7))
	q, err := subtraj.SampleQuery(w.Data, 40, rng)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Search. τ_ratio = 0.1 means "up to 10% of the query's filtering
	//    cost in edits".
	matches, err := eng.SearchRatio(q, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query |Q|=%d, τ=%.3g: %d matching subtrajectories\n",
		len(q), eng.Threshold(q, 0.1), len(matches))
	for i, m := range matches {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(matches)-5)
			break
		}
		fmt.Printf("  trajectory %-5d span [%3d..%3d]  wed=%.3g\n", m.ID, m.S, m.T, m.WED)
	}

	// 6. The same query under a different similarity function — no
	//    algorithm change needed (the headline property of WED).
	eng2, err := subtraj.NewEngine(w.Data, net.Lev())
	if err != nil {
		log.Fatal(err)
	}
	matches2, err := eng2.SearchRatio(q, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same query under Levenshtein: %d matches\n", len(matches2))
}

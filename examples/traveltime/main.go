// Travel-time estimation (the paper's §1 and §6.2.1 motivating
// application): estimate how long a planned route will take by averaging
// the observed travel times of historical subtrajectories similar to it.
//
// On sparse data — few or no vehicles drove the exact route — similarity
// search recovers more historical evidence than exact matching, at the
// cost of some bias. This example contrasts both on one route.
//
//	go run ./examples/traveltime
package main

import (
	"fmt"
	"log"
	"math/rand"

	"subtraj"
)

func main() {
	log.SetFlags(0)
	w := subtraj.Generate(subtraj.BeijingLike().Scale(0.05))
	net := subtraj.NewNetwork(w.Graph)
	edgeData, err := w.Data.ToEdgeRep(w.Graph)
	if err != nil {
		log.Fatal(err)
	}
	// SURS — the best similarity function for this task in the paper —
	// measures the road length NOT shared between two routes.
	eng, err := subtraj.NewEngine(edgeData, net.SURS())
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	q, err := subtraj.SampleQuery(edgeData, 40, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Exact evidence: subtrajectories identical to the route (wed = 0).
	exact, err := eng.Search(q, 1e-9)
	if err != nil {
		log.Fatal(err)
	}
	exactTimes := travelTimes(edgeData, exact)
	fmt.Printf("route of %d road segments\n", len(q))
	fmt.Printf("exact matches:   %2d  -> estimate %s\n", len(exactTimes), estimate(exactTimes))

	// Similar evidence: allow up to 10%% / 20%% unshared road length.
	for _, ratio := range []float64{0.1, 0.2} {
		ms, err := eng.SearchRatio(q, ratio)
		if err != nil {
			log.Fatal(err)
		}
		// One estimate per historical trajectory: its best match.
		best := subtraj.BestPerTrajectory(ms)
		var flat []subtraj.Match
		for _, m := range best {
			flat = append(flat, m)
		}
		times := travelTimes(edgeData, flat)
		fmt.Printf("τ_ratio = %.1f:   %2d  -> estimate %s\n", ratio, len(times), estimate(times))
	}
}

// travelTimes extracts the driving time across each matched span. Under
// edge representation a match [s..t] covers vertices s..t+1.
func travelTimes(ds *subtraj.Dataset, ms []subtraj.Match) []float64 {
	var out []float64
	for _, m := range ms {
		t := ds.Get(m.ID)
		end := int(m.T) + 1
		if end >= len(t.Times) {
			end = len(t.Times) - 1
		}
		out = append(out, t.Times[end]-t.Times[m.S])
	}
	return out
}

func estimate(times []float64) string {
	if len(times) == 0 {
		return "no evidence"
	}
	var sum float64
	for _, t := range times {
		sum += t
	}
	return fmt.Sprintf("%.0f s (n=%d)", sum/float64(len(times)), len(times))
}

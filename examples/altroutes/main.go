// Alternative route suggestion (the paper's §6.2.2): a driver plans a
// route Q from u to v; variations of Q found in historical trajectories
// are suggested as alternatives, ranked by "naturalness" — how steadily a
// route progresses toward the destination.
//
//	go run ./examples/altroutes
package main

import (
	"fmt"
	"log"
	"math/rand"

	"subtraj"
)

func main() {
	log.SetFlags(0)
	w := subtraj.Generate(subtraj.BeijingLike().Scale(0.05))
	net := subtraj.NewNetwork(w.Graph)
	eng, err := subtraj.NewEngine(w.Data, net.EDR(100))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(23))
	q, err := subtraj.SampleQuery(w.Data, 40, rng)
	if err != nil {
		log.Fatal(err)
	}
	u, v := q[0], q[len(q)-1]
	fmt.Printf("planned route: %d vertices from %d to %d\n", len(q), u, v)

	ms, err := eng.SearchRatio(q, 0.25)
	if err != nil {
		log.Fatal(err)
	}

	// Keep only matches that actually start at u and end at v, and
	// deduplicate identical paths driven by different vehicles.
	seen := map[string]bool{}
	type route struct {
		path []subtraj.Symbol
		wed  float64
	}
	var routes []route
	for _, m := range ms {
		p := w.Data.Get(m.ID).Path[m.S : m.T+1]
		if p[0] != u || p[len(p)-1] != v {
			continue
		}
		key := fmt.Sprint(p)
		if seen[key] {
			continue
		}
		seen[key] = true
		routes = append(routes, route{path: p, wed: m.WED})
	}
	fmt.Printf("found %d distinct alternative routes (τ_ratio = 0.25)\n", len(routes))

	for i, r := range routes {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(routes)-8)
			break
		}
		length, err := w.Graph.PathWeight(r.path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  route %d: %3d vertices, %6.0f m, wed=%.2f, naturalness=%.3f\n",
			i+1, len(r.path), length, r.wed, naturalness(w, r.path, v))
	}
}

// naturalness is the fraction of hops that get closer (Euclidean, for the
// example; the evaluation harness uses network distance) to the
// destination than ever before.
func naturalness(w *subtraj.Workload, route []subtraj.Symbol, dest subtraj.Symbol) float64 {
	if len(route) < 2 {
		return 0
	}
	destPt := w.Graph.Coord(dest)
	closest := w.Graph.Coord(route[0]).Dist(destPt)
	count := 0
	for _, s := range route[1:] {
		if d := w.Graph.Coord(s).Dist(destPt); d < closest {
			count++
			closest = d
		}
	}
	return float64(count) / float64(len(route)-1)
}

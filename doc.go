// Package subtraj is a from-scratch Go implementation of
//
//	Koide, Xiao, Ishikawa. "Fast Subtrajectory Similarity Search in Road
//	Networks under Weighted Edit Distance Constraints." PVLDB 13(11), 2020.
//
// It answers subtrajectory similarity queries over network-constrained
// trajectory databases: given a query path Q, a weighted edit distance
// (WED) cost model, and a threshold τ, it finds every subtrajectory
// P^(id)[s..t] in the database with wed(P[s..t], Q) < τ — exactly, for any
// cost model in the WED class (Levenshtein, EDR, ERP, NetEDR, NetERP,
// SURS, or user-defined costs satisfying the symmetry assumptions).
//
// The engine follows the paper's filter-and-verify design: an inverted
// index over path symbols, subsequence filtering with an optimised
// τ-subsequence chosen by a 2-approximation to the NP-hard minimum
// candidate problem, and local verification that runs the WED dynamic
// programming bidirectionally from candidate positions with
// bidirectional-trie caching of DP columns. Cached columns are τ-banded
// — only the cell range that can still influence a result under the
// query threshold is computed and stored, bit-equal to the full-width
// DP — and QueryStats reports the cell-level pruning via the
// Verify.CellsComputed/CellsAvailable band counters next to the paper's
// UPR/CMR rates.
//
// # Quick start
//
//	w := subtraj.Generate(subtraj.BeijingLike())     // or load your own data
//	net := subtraj.NewNetwork(w.Graph)
//	eng, _ := subtraj.NewEngine(w.Data, net.EDR(50)) // EDR with ε = 50 m
//	q, _ := subtraj.SampleQuery(w.Data, 60, rng)
//	matches, _ := eng.SearchRatio(q, 0.1)            // τ = 0.1·Σc(q)
//
// Engines expose no synchronization; wrap one in NewSafeEngine to share
// it across goroutines, or serve it over HTTP with cmd/wedserve. A
// single query may itself fan out over index shards (one worker per CPU
// by default; see NewEngineShards and SearchParallel), so custom cost
// models must be safe for concurrent reads — every built-in model is.
// Pass parallelism 1 to keep a query strictly on the calling goroutine.
//
// See examples/ for complete programs (travel-time estimation,
// alternative-route suggestion, temporal search, an HTTP client) and
// DESIGN.md for the paper-to-module map.
package subtraj
